//! Offline stub of `criterion` (see `vendor/README.md`).
//!
//! The build sandbox cannot reach crates.io, so this crate provides the
//! subset of the criterion 0.5 surface the bench targets use:
//! `Criterion` builder methods, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs each routine
//! `sample_size` times and reports the mean wall-clock time per
//! iteration on stdout — enough to compare runs by hand, not a
//! replacement for real criterion statistics.

use std::time::{Duration, Instant};

/// Top-level benchmark driver; mirrors criterion's builder API.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times `f`'s `Bencher::iter` routine and prints the mean.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bench = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        bench.report(&self.name, &id);
    }

    /// `bench_function` with an explicit input value passed through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bench = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bench, input);
        bench.report(&self.name, &id);
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param` like real criterion.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iterations` times, accumulating wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, id: &dyn std::fmt::Display) {
        let per_iter = self.elapsed.as_nanos() / self.iterations.max(1) as u128;
        println!("bench {group}/{id}: {per_iter} ns/iter ({} iters)", self.iterations);
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions under a name with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("stub");
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
