//! Offline stub of `rand` 0.8 (see `vendor/README.md`).
//!
//! Nothing in the workspace currently imports `rand` items (it is a
//! declared-but-unused dev-dependency), so this stub only has to satisfy
//! dependency resolution. A small deterministic xorshift subset of the
//! 0.8 surface is provided anyway so ad-hoc test code can use
//! `rand::thread_rng()` / `Rng::gen_range` without surprises.

/// Subset of `rand::Rng` backed by a deterministic xorshift64* stream.
pub trait Rng {
    /// Advances the generator and returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform-ish value in `[low, high)` (stub: modulo reduction).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    /// A pseudo-random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// The stub generator: xorshift64* with a fixed default seed.
#[derive(Debug, Clone)]
pub struct StdRng(u64);

impl StdRng {
    /// Creates a generator from a seed (zero is remapped).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng(seed | 1)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Deterministic stand-in for `rand::thread_rng()`.
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = a.gen_range(10..20);
            assert_eq!(v, b.gen_range(10..20));
            assert!((10..20).contains(&v));
        }
    }
}
