//! Offline stub of `proptest` (see `vendor/README.md`).
//!
//! The build sandbox cannot reach crates.io, so this crate reimplements
//! the slice of the proptest 1.x API that the workspace's property tests
//! use: the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, `Strategy` with integer/float ranges, tuples,
//! `prop_map`, `any::<T>()`, `collection::vec`, and `sample::Index`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **Deterministic**: every test derives its RNG seed from the test
//!   name, so runs are reproducible without a `.proptest-regressions`
//!   file (failures print the case number, which is stable).
//! * **No shrinking**: a failing case is reported as-is instead of being
//!   minimized. The case values can be recovered by re-running, since
//!   generation is deterministic.
//!
//! Integer and float `any` strategies mix uniform bits with a 1-in-8
//! dose of edge values (zero, one, MIN, MAX, NaN, infinities) so the
//! boundary behaviour the tests care about is actually exercised.

pub mod test_runner {
    /// Deterministic xorshift64* stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a), so each property
        /// test sees its own reproducible sequence.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, n)`; `n == 0` yields 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-`proptest!` block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by the `prop_assert*` macros; carries the message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`. Unlike real proptest there
    /// is no value tree: `generate` samples directly and nothing shrinks.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy; what `Strategy::boxed` returns.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Output of `prop_map`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms[0].1.generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies!((A, B)(A, B, C)(A, B, C, D));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let r = rng.next_u64();
                    if r % 8 == 0 {
                        // Edge dose: the values integer semantics break on.
                        const EDGES: [$t; 4] = [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX];
                        EDGES[(r >> 32) as usize % EDGES.len()]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let r = rng.next_u64();
            if r % 8 == 0 {
                const EDGES: [f64; 8] = [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::NAN,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::MIN_POSITIVE,
                ];
                EDGES[(r >> 32) as usize % EDGES.len()]
            } else {
                // All bit patterns are valid f64s (some are NaNs); this
                // covers subnormals and payload NaNs that arithmetic
                // strategies would never reach.
                f64::from_bits(rng.next_u64())
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(u32::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for [u8; 8] {
        fn arbitrary(rng: &mut TestRng) -> [u8; 8] {
            rng.next_u64().to_le_bytes()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy: `size.start ..= size.end - 1` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// An index into a collection whose length is unknown at generation
    /// time; resolved against the concrete length via [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Wraps raw bits (used by the `Arbitrary` impl).
        pub fn from_raw(raw: u64) -> Index {
            Index(raw)
        }

        /// Resolves against a collection of length `len` (must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Defines property tests: each generated `#[test]` runs the body for
/// `cases` deterministic samples of its `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{} (deterministic; re-run reproduces): {}",
                            stringify!($name), case, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `left != right` (both: `{:?}`)", l);
    }};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges honour their bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1u8..=4, (a, b) in (0usize..10, 0.0f64..1.0)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
        }

        /// `prop_oneof!` + `prop_map` produce only arm values.
        #[test]
        fn oneof_picks_arms(v in prop_oneof![3 => (0u32..4).prop_map(|x| x * 2), 1 => Just(99u32)]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 8));
        }

        /// Vec lengths respect the size range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("seed");
        let mut b = crate::test_runner::TestRng::from_name("seed");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
