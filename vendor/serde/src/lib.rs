//! Offline stub of the `serde` facade.
//!
//! The build sandbox has no access to crates.io (see `vendor/README.md`),
//! and this workspace uses serde only as `#[derive(Serialize,
//! Deserialize)]` decoration on plain data types — nothing serializes at
//! runtime. This stub provides the two marker traits and re-exports the
//! no-op derive macros so those derives keep compiling unchanged. If the
//! repo ever gains a real serialization consumer, replace this stub with
//! a vendored copy of the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// The stub derive emits an empty impl of this trait.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// The stub derive emits an empty impl of this trait.
pub trait Deserialize<'de> {}

/// Namespace mirror so `serde::de::...` paths resolve if ever referenced.
pub mod de {
    pub use crate::Deserialize;
}

/// Namespace mirror so `serde::ser::...` paths resolve if ever referenced.
pub mod ser {
    pub use crate::Serialize;
}
