//! # wabench — facade crate
//!
//! Re-exports the whole reproduction workspace: the Wasm substrate, the
//! WaCC compiler, the five runtime engines, the WASI host, the
//! architectural simulator, the WABench suite, and the experiment
//! harness. Depend on this crate to get everything; see the individual
//! crates for focused APIs.
//!
//! ```
//! // Compile, run, and profile a program in a few lines.
//! use wabench::engines::{Engine, EngineKind};
//! use wabench::wasi_rt::WasiCtx;
//!
//! let wasm = wabench::wacc::compile_to_bytes(
//!     "export fn main() -> i32 { return 7 * 6; }",
//!     wabench::wacc::OptLevel::O2,
//! )?;
//! let module = Engine::new(EngineKind::Wasmtime).compile(&wasm)?;
//! let mut instance = module.instantiate(&wabench::wasi_rt::imports(), Box::new(WasiCtx::new()))?;
//! let answer = instance.invoke("main", &[])?;
//! assert_eq!(answer, Some(wabench::wasm_core::types::Value::I32(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use archsim;
pub use engines;
pub use harness;
pub use suite;
pub use svc;
pub use wacc;
pub use wasi_rt;
pub use wasm_core;
