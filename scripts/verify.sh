#!/usr/bin/env bash
# Tier-1 verify flow for wabench.
#
# Runs, in order:
#   1. cargo build --release          (the seed tier-1 build)
#   2. cargo test -q                  (the seed tier-1 test suite)
#   3. cargo clippy --workspace --all-targets -- -D warnings
#   4. wabench-lint over crates/suite/programs (exits nonzero on findings)
#   5. wabench-served smoke: socket round-trip, 3 jobs cold + 3 warm,
#      asserting warm artifact loads beat cold compiles
#   6. trace smoke: span capture -> Chrome trace -> validator
#   7. prof smoke: record a baseline, diff it clean, prove the gate
#      fires under a synthetic 2x slowdown, and round-trip folded stacks
#   8. docs check: every intra-repo markdown link in README.md,
#      EXPERIMENTS.md, and docs/*.md resolves
#   9. chaos smoke: fig6 under a 5% fault plan is bit-identical to a
#      clean run, and the two chaos passes together exercise at least
#      one retry, one interpreter fallback, and one store repair
#  10. audit smoke: wabench-audit over the whole suite with the proof
#      verifier compiled in (--features verify-ir) must report zero
#      proof violations and at least 4000 eliminated checks
#  11. load smoke: a short fixed-seed wabench-load run against a live
#      wabench-served produces a well-formed BENCH_*.json with completed
#      jobs and zero protocol errors, and wabench-prof diff accepts the
#      artifact against itself
#  12. live telemetry smoke: a fixed-seed load run against a sampling
#      server stitches client+server request spans into a Chrome trace
#      that wabench-trace-check accepts, and wabench-top --once reports
#      a window (completed count, nonzero QPS, ordered quantiles) that
#      agrees with the run's BENCH artifact
#  13. alert & postmortem smoke: a server with the alert engine, the
#      continuous profiler, and a deterministic 20ms delay fault armed
#      must fire the p99 rule, write a flight-recorder bundle that
#      wabench-doctor diagnoses (naming the delay site), and list
#      profile windows; a fault-free control run under the same engine
#      fires nothing and writes no bundle
#  14. router smoke: a fixed-seed load through wabench-router over two
#      wabench-served shards completes with zero protocol errors and
#      both shards serving jobs; wabench-top/wabench-doctor degrade
#      gracefully against the router socket; a chaos pass with one
#      shard armed 'crash=1.0' (the process aborts on its first job)
#      still completes the run with at least one failover; and the
#      reactor front-end sustains at least the --threaded baseline QPS
#
# Offline / vendored-cargo caveat: this workspace builds fully offline.
# Every external dependency (proptest, criterion, rand, ...) is a path
# dependency on an API-compatible stub under vendor/ — see
# vendor/README.md. If a cargo invocation here fails trying to reach
# crates.io (e.g. "failed to get `...` as a dependency"), the cause is a
# new non-path dependency in some Cargo.toml, NOT a network outage to be
# retried: point the dependency at a vendor/ stub instead.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*" >&2; }

step "tier-1 build (release)"
cargo build --release

step "tier-1 tests"
cargo test -q

step "clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "wabench-lint (source diagnostics over all suite programs)"
cargo run -q -p wabench-harness --bin wabench-lint

step "wabench-served smoke (socket protocol + artifact store, cold vs warm)"
cargo build -q --release -p wabench-svc
./target/release/wabench-served smoke --jobs 3

step "trace smoke (span capture -> Chrome trace export -> validator)"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run -q --release -p wabench-harness --bin wabench-run -- \
    crc32 --jobs 2 --trace-out "$trace_tmp/trace.json" > /dev/null
cargo run -q --release -p wabench-obs --bin wabench-trace-check -- \
    "$trace_tmp/trace.json"

step "prof smoke (baseline record -> clean diff -> slowdown gate -> folded export)"
prof=./target/release/wabench-prof
cargo build -q --release -p wabench-prof
"$prof" record --out "$trace_tmp/base.jsonl" \
    --bench crc32 --engine wasm3 --engine wamr --level O1 --reps 3
# An unchanged tree must diff clean...
"$prof" diff --base "$trace_tmp/base.jsonl"
# ...and the gate must actually fire when runs slow down 2x (the
# synthetic-slowdown hook); a diff that cannot fail guards nothing.
if WABENCH_PROF_SLOWDOWN=2 "$prof" diff --base "$trace_tmp/base.jsonl" > "$trace_tmp/diff.out"; then
    echo "prof smoke FAILED: 2x slowdown did not trip the regression gate" >&2
    exit 1
fi
grep -q "REGRESSION" "$trace_tmp/diff.out"
# Folded stacks from a 4-worker scheduler run parse and agree with the
# Chrome exporter (depth cross-check lives in the prof test suite).
"$prof" fold --out "$trace_tmp/stacks.folded" --bench crc32 --level O1 --workers 4 \
    --chrome "$trace_tmp/prof-trace.json"
cargo run -q --release -p wabench-obs --bin wabench-trace-check -- \
    "$trace_tmp/prof-trace.json"
test -s "$trace_tmp/stacks.folded"

step "docs check (intra-repo markdown links resolve)"
scripts/docs-check.sh

step "chaos smoke (fault injection: figures bit-identical, recovery paths exercised)"
harness=./target/release/wabench-harness
cargo build -q --release -p wabench-harness
plan='seed=7,compile=0.05,panic=0.02,store.read=0.05'
# A clean fig6 (simulated, deterministic) is the reference...
"$harness" fig6 --scale test --jobs 4 --out "$trace_tmp/clean6.md" \
    > /dev/null 2>&1
# ...the same figure under 5% faults must reproduce it bit-for-bit:
# degraded/failed cells are skipped by the warm pass and recomputed
# cleanly by the serial pass.
"$harness" fig6 --scale test --jobs 4 --faults "$plan" \
    --store "$trace_tmp/chaos-store" --out "$trace_tmp/chaos6.md" \
    > "$trace_tmp/chaos6.log" 2>&1
cmp "$trace_tmp/clean6.md" "$trace_tmp/chaos6.md" || {
    echo "chaos smoke FAILED: fig6 differs under fault injection" >&2
    exit 1
}
# A second chaos pass (Exec jobs this time) reuses the store directory,
# so keyed read-corruption faults now hit populated entries: together
# the two runs must show every recovery path engaging.
"$harness" fig4 --scale test --jobs 4 --faults "$plan" \
    --store "$trace_tmp/chaos-store" --out "$trace_tmp/chaos4.md" \
    > "$trace_tmp/chaos4.log" 2>&1
grep -h '^resilience:' "$trace_tmp/chaos6.log" "$trace_tmp/chaos4.log"
for counter in retries fallbacks repairs; do
    total=$(grep -h '^resilience:' "$trace_tmp/chaos6.log" "$trace_tmp/chaos4.log" \
        | grep -oE "$counter=[0-9]+" | cut -d= -f2 | awk '{s += $1} END {print s}')
    if [ "${total:-0}" -lt 1 ]; then
        echo "chaos smoke FAILED: no $counter recorded across chaos runs" >&2
        exit 1
    fi
done

step "audit smoke (static check-elimination proofs re-verified on the suite)"
# All 50 programs x O0..O3 with every eliminated check's proof
# obligation independently re-derived: zero violations, and the
# eliminated-check floor catches an analysis that silently stops
# proving anything (full suite currently eliminates ~4300).
cargo run -q --release --features verify-ir -p wabench-harness \
    --bin wabench-audit -- --min-eliminated 4000

step "load smoke (open-loop generator -> live server -> BENCH artifact gate)"
loadgen=./target/release/wabench-load
cargo build -q --release -p wabench-load
sock="$trace_tmp/load.sock"
./target/release/wabench-served serve --socket "$sock" --workers 2 \
    --store "$trace_tmp/load-store" > "$trace_tmp/served.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
if ! [ -S "$sock" ]; then
    echo "load smoke FAILED: wabench-served socket never appeared" >&2
    cat "$trace_tmp/served.log" >&2
    exit 1
fi
# wabench-load itself exits nonzero on zero completed jobs or any
# protocol error, so a 0 here already covers both health assertions.
"$loadgen" run --seed 7 --mix fig1 --qps 200 --jobs 20 --phases cold,warm \
    --socket "$sock" --out "$trace_tmp/BENCH_smoke.json" \
    | tee "$trace_tmp/load.out"
./target/release/wabench-served shutdown --socket "$sock" > /dev/null
wait "$served_pid" 2> /dev/null || true
# The artifact must carry the schema tag prof's sniffing keys on...
head -c 64 "$trace_tmp/BENCH_smoke.json" | grep -q '^{"schema":"wabench-bench"'
grep -q '"completed":' "$trace_tmp/BENCH_smoke.json"
# ...and the SLO gate must accept a run compared against itself.
"$prof" diff --base "$trace_tmp/BENCH_smoke.json" --cur "$trace_tmp/BENCH_smoke.json"

step "live telemetry smoke (sampler window -> wabench-top --once; stitched request traces)"
top=./target/release/wabench-top
sock="$trace_tmp/top.sock"
./target/release/wabench-served serve --socket "$sock" --workers 2 \
    --store "$trace_tmp/top-store" --sample-ms 25 > "$trace_tmp/served-top.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
if ! [ -S "$sock" ]; then
    echo "telemetry smoke FAILED: wabench-served socket never appeared" >&2
    cat "$trace_tmp/served-top.log" >&2
    exit 1
fi
"$loadgen" run --seed 11 --mix fig1 --qps 200 --jobs 20 --phases cold,warm \
    --socket "$sock" --out "$trace_tmp/BENCH_top.json" \
    --stitch-out "$trace_tmp/requests.json" | tee "$trace_tmp/load-top.out"
sleep 0.2 # two+ sampler intervals, so the final completions get sampled
"$top" --once --socket "$sock" | tee "$trace_tmp/top.out"
./target/release/wabench-served shutdown --socket "$sock" > /dev/null
wait "$served_pid" 2> /dev/null || true
# The stitched trace must pair client and server spans per request and
# pass the same validator as every other trace artifact...
grep -q '"client.request"' "$trace_tmp/requests.json"
grep -q '"server.job"' "$trace_tmp/requests.json"
cargo run -q --release -p wabench-obs --bin wabench-trace-check -- \
    "$trace_tmp/requests.json"
# ...and the live window must agree with the BENCH artifact: the same
# completed count, nonzero QPS, and ordered quantiles.
bench_completed=$(grep -oE '"completed":[0-9]+' "$trace_tmp/BENCH_top.json" \
    | head -1 | cut -d: -f2)
awk -F= -v bench="$bench_completed" '
    $1 == "completed" { completed = $2 + 0 }
    $1 == "qps"       { qps = $2 + 0 }
    $1 == "p50_ns"    { p50 = $2 + 0 }
    $1 == "p99_ns"    { p99 = $2 + 0 }
    END {
        if (completed != bench) {
            print "telemetry smoke FAILED: window completed " completed \
                " != artifact completed " bench; exit 1
        }
        if (qps <= 0) { print "telemetry smoke FAILED: qps=" qps; exit 1 }
        if (p50 <= 0 || p99 < p50) {
            print "telemetry smoke FAILED: quantiles p50=" p50 " p99=" p99; exit 1
        }
    }' "$trace_tmp/top.out"

step "alert & postmortem smoke (SLO rules -> flight recorder -> wabench-doctor)"
doctor=./target/release/wabench-doctor
served=./target/release/wabench-served
sock="$trace_tmp/alert.sock"
pm_dir="$trace_tmp/postmortems"
# Every job is delayed 20ms (rate 1.0, seeded), far over the 5ms p99
# ceiling, so the rule fires deterministically.
"$served" serve --socket "$sock" --workers 2 --sample-ms 25 --profile-ms 50 \
    --faults 'seed=7,delay=1.0:20ms' --alerts 'p99=5ms:1s' \
    --postmortem-dir "$pm_dir" > "$trace_tmp/served-alert.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
if ! [ -S "$sock" ]; then
    echo "alert smoke FAILED: wabench-served socket never appeared" >&2
    cat "$trace_tmp/served-alert.log" >&2
    exit 1
fi
"$loadgen" run --seed 13 --mix fig1 --qps 100 --jobs 10 --phases cold \
    --socket "$sock" --out "$trace_tmp/BENCH_alert.json" > /dev/null
sleep 0.2 # let the sampler cover the delayed completions
"$served" alerts --socket "$sock" | tee "$trace_tmp/alerts.out"
"$prof" windows --socket "$sock" | tee "$trace_tmp/windows.out"
"$served" shutdown --socket "$sock" > /dev/null
wait "$served_pid" 2> /dev/null || true
# The p99 rule must have fired (live now, or as a logged transition)...
grep -qE 'firing p99:' "$trace_tmp/alerts.out" || {
    echo "alert smoke FAILED: p99 rule never fired under a 20ms delay fault" >&2
    exit 1
}
# ...the continuous profiler must have sealed at least one window...
grep -q '^window #' "$trace_tmp/windows.out" || {
    echo "alert smoke FAILED: no continuous-profile windows buffered" >&2
    exit 1
}
# ...and the flight recorder must have written a versioned bundle.
bundle=$(ls "$pm_dir"/postmortem-*-p99.json 2> /dev/null | head -1)
if [ -z "$bundle" ]; then
    echo "alert smoke FAILED: no postmortem bundle in $pm_dir" >&2
    exit 1
fi
head -c 32 "$bundle" | grep -q '^{"schema":"wabench-postmortem"'
# The doctor must diagnose the bundle (exit 1 = findings) and name the
# injected delay site as a root-cause candidate.
rc=0
"$doctor" --bundle "$bundle" | tee "$trace_tmp/doctor.out" || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "alert smoke FAILED: doctor exit $rc on a bundle with findings" >&2
    exit 1
fi
grep -q 'site=delay' "$trace_tmp/doctor.out" || {
    echo "alert smoke FAILED: doctor did not name the injected delay site" >&2
    exit 1
}
# Control: the same engine with a generous ceiling and no faults must
# stay quiet — no firing rules, no transitions, no bundle written.
sock="$trace_tmp/alert-clean.sock"
pm_clean="$trace_tmp/postmortems-clean"
"$served" serve --socket "$sock" --workers 2 --sample-ms 25 \
    --alerts 'p99=250ms:1s' --postmortem-dir "$pm_clean" \
    > "$trace_tmp/served-clean.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
"$loadgen" run --seed 13 --mix fig1 --qps 100 --jobs 10 --phases cold \
    --socket "$sock" --out "$trace_tmp/BENCH_clean.json" > /dev/null
sleep 0.2
"$served" alerts --socket "$sock" | tee "$trace_tmp/alerts-clean.out"
"$served" shutdown --socket "$sock" > /dev/null
wait "$served_pid" 2> /dev/null || true
grep -q 'armed (0 firing, 0 logged' "$trace_tmp/alerts-clean.out" || {
    echo "alert smoke FAILED: rules fired on a fault-free run" >&2
    exit 1
}
if [ -d "$pm_clean" ] && [ -n "$(ls -A "$pm_clean" 2> /dev/null)" ]; then
    echo "alert smoke FAILED: postmortem written on a fault-free run" >&2
    exit 1
fi

step "router smoke (2-shard fleet -> failover chaos -> reactor vs threaded baseline)"
routerbin=./target/release/wabench-router
cargo build -q --release -p wabench-router
wait_sock() { # wait_sock PATH LABEL LOG
    for _ in $(seq 1 50); do [ -S "$1" ] && return 0; sleep 0.1; done
    echo "router smoke FAILED: $2 socket never appeared" >&2
    cat "$3" >&2
    exit 1
}
s0="$trace_tmp/rshard0.sock"; s1="$trace_tmp/rshard1.sock"
rsock="$trace_tmp/router.sock"
"$served" serve --socket "$s0" --workers 2 --store "$trace_tmp/rstore0" \
    > "$trace_tmp/rshard0.log" 2>&1 &
shard0_pid=$!
"$served" serve --socket "$s1" --workers 2 --store "$trace_tmp/rstore1" \
    > "$trace_tmp/rshard1.log" 2>&1 &
shard1_pid=$!
wait_sock "$s0" shard-0 "$trace_tmp/rshard0.log"
wait_sock "$s1" shard-1 "$trace_tmp/rshard1.log"
"$routerbin" serve --socket "$rsock" \
    --backend shard-0="$s0" --backend shard-1="$s1" \
    > "$trace_tmp/router.log" 2>&1 &
router_pid=$!
wait_sock "$rsock" router "$trace_tmp/router.log"
# wabench-load exits nonzero on zero completed jobs or any protocol
# error, so a 0 here covers both; clients speak the ordinary protocol
# to the router socket.
"$loadgen" run --seed 7 --mix fig1 --qps 200 --jobs 20 --phases cold,warm \
    --socket "$rsock" --out "$trace_tmp/BENCH_router.json" \
    | tee "$trace_tmp/load-router.out"
head -c 64 "$trace_tmp/BENCH_router.json" | grep -q '^{"schema":"wabench-bench"'
grep -q '"backends":' "$trace_tmp/BENCH_router.json"
# Both shards must have served traffic (the ring splits fig1's cells).
"$routerbin" status --socket "$rsock" | tee "$trace_tmp/router-status.out"
for shard in shard-0 shard-1; do
    fwd=$(grep -oE "^shard $shard .* ([0-9]+) forwarded" "$trace_tmp/router-status.out" \
        | grep -oE '[0-9]+ forwarded' | cut -d' ' -f1)
    if [ "${fwd:-0}" -lt 1 ]; then
        echo "router smoke FAILED: $shard served no jobs" >&2
        exit 1
    fi
done
# Pointed at the router, wabench-top and wabench-doctor must degrade
# gracefully (per-shard requests are refused with the router: prefix),
# not error out.
"$top" --once --socket "$rsock" > "$trace_tmp/top-router.out" 2>&1 || {
    echo "router smoke FAILED: wabench-top errored against the router socket" >&2
    cat "$trace_tmp/top-router.out" >&2
    exit 1
}
grep -q '^sampling=0' "$trace_tmp/top-router.out"
rc=0
"$doctor" --socket "$rsock" > "$trace_tmp/doctor-router.out" 2>&1 || rc=$?
if [ "$rc" -gt 1 ]; then
    echo "router smoke FAILED: wabench-doctor exit $rc against the router socket" >&2
    cat "$trace_tmp/doctor-router.out" >&2
    exit 1
fi
"$routerbin" shutdown --socket "$rsock" > /dev/null
wait "$router_pid" 2> /dev/null || true
"$served" shutdown --socket "$s0" > /dev/null
"$served" shutdown --socket "$s1" > /dev/null
wait "$shard0_pid" "$shard1_pid" 2> /dev/null || true

# Chaos pass: one shard armed with the crash fault aborts its whole
# process on the first job it picks up; the run must still complete
# with zero protocol errors, the dead shard's keys failing over.
c0="$trace_tmp/cshard0.sock"; c1="$trace_tmp/cshard1.sock"
crsock="$trace_tmp/crouter.sock"
"$served" serve --socket "$c0" --workers 2 --faults 'seed=7,crash=1.0' \
    > "$trace_tmp/cshard0.log" 2>&1 &
cshard0_pid=$!
"$served" serve --socket "$c1" --workers 2 \
    > "$trace_tmp/cshard1.log" 2>&1 &
cshard1_pid=$!
wait_sock "$c0" chaos-shard-0 "$trace_tmp/cshard0.log"
wait_sock "$c1" chaos-shard-1 "$trace_tmp/cshard1.log"
"$routerbin" serve --socket "$crsock" \
    --backend shard-0="$c0" --backend shard-1="$c1" \
    > "$trace_tmp/crouter.log" 2>&1 &
crouter_pid=$!
wait_sock "$crsock" chaos-router "$trace_tmp/crouter.log"
"$loadgen" run --seed 7 --mix fig1 --qps 200 --jobs 20 --phases cold \
    --socket "$crsock" --out "$trace_tmp/BENCH_chaos_router.json" \
    | tee "$trace_tmp/load-chaos-router.out"
"$routerbin" status --socket "$crsock" | tee "$trace_tmp/crouter-status.out"
failovers=$(grep -oE '[0-9]+ failovers' "$trace_tmp/crouter-status.out" \
    | cut -d' ' -f1 | awk '{s += $1} END {print s}')
if [ "${failovers:-0}" -lt 1 ]; then
    echo "router smoke FAILED: shard crash caused no failovers" >&2
    exit 1
fi
"$routerbin" shutdown --socket "$crsock" > /dev/null
wait "$crouter_pid" 2> /dev/null || true
"$served" shutdown --socket "$c1" > /dev/null
wait "$cshard0_pid" "$cshard1_pid" 2> /dev/null || true

# Front-end baseline: the same fixed-seed run against a reactor server
# and a --threaded server; the reactor must sustain at least the
# thread-per-connection QPS (0.75 margin absorbs scheduler noise on a
# shared CI host — the real regression this guards is an order-of-
# magnitude stall, not a few percent).
fsock="$trace_tmp/fe-reactor.sock"
"$served" serve --socket "$fsock" --workers 2 > "$trace_tmp/fe-reactor.log" 2>&1 &
fe_pid=$!
wait_sock "$fsock" fe-reactor "$trace_tmp/fe-reactor.log"
"$loadgen" run --seed 17 --mix fig1 --qps 300 --jobs 30 --phases cold \
    --socket "$fsock" --out "$trace_tmp/BENCH_fe_reactor.json" > /dev/null
"$served" shutdown --socket "$fsock" > /dev/null
wait "$fe_pid" 2> /dev/null || true
fsock="$trace_tmp/fe-threaded.sock"
"$served" serve --threaded --socket "$fsock" --workers 2 \
    > "$trace_tmp/fe-threaded.log" 2>&1 &
fe_pid=$!
wait_sock "$fsock" fe-threaded "$trace_tmp/fe-threaded.log"
"$loadgen" run --seed 17 --mix fig1 --qps 300 --jobs 30 --phases cold \
    --socket "$fsock" --out "$trace_tmp/BENCH_fe_threaded.json" > /dev/null
"$served" shutdown --socket "$fsock" > /dev/null
wait "$fe_pid" 2> /dev/null || true
qps_of() { # second "qps" in the file is totals.qps (the first is config)
    grep -oE '"qps":[0-9.]+' "$1" | sed -n 2p | cut -d: -f2
}
reactor_qps=$(qps_of "$trace_tmp/BENCH_fe_reactor.json")
threaded_qps=$(qps_of "$trace_tmp/BENCH_fe_threaded.json")
echo "front-end QPS: reactor $reactor_qps vs threaded $threaded_qps"
awk -v r="$reactor_qps" -v t="$threaded_qps" 'BEGIN {
    if (r + 0 <= 0 || t + 0 <= 0) {
        print "router smoke FAILED: missing sustained QPS (reactor=" r ", threaded=" t ")"
        exit 1
    }
    if (r < t * 0.75) {
        print "router smoke FAILED: reactor " r " qps below threaded baseline " t
        exit 1
    }
}'

step "verify OK"
