#!/usr/bin/env bash
# Tier-1 verify flow for wabench.
#
# Runs, in order:
#   1. cargo build --release          (the seed tier-1 build)
#   2. cargo test -q                  (the seed tier-1 test suite)
#   3. cargo clippy --workspace --all-targets -- -D warnings
#   4. wabench-lint over crates/suite/programs (exits nonzero on findings)
#   5. wabench-served smoke: socket round-trip, 3 jobs cold + 3 warm,
#      asserting warm artifact loads beat cold compiles
#
# Offline / vendored-cargo caveat: this workspace builds fully offline.
# Every external dependency (proptest, criterion, rand, ...) is a path
# dependency on an API-compatible stub under vendor/ — see
# vendor/README.md. If a cargo invocation here fails trying to reach
# crates.io (e.g. "failed to get `...` as a dependency"), the cause is a
# new non-path dependency in some Cargo.toml, NOT a network outage to be
# retried: point the dependency at a vendor/ stub instead.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*" >&2; }

step "tier-1 build (release)"
cargo build --release

step "tier-1 tests"
cargo test -q

step "clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "wabench-lint (source diagnostics over all suite programs)"
cargo run -q -p wabench-harness --bin wabench-lint

step "wabench-served smoke (socket protocol + artifact store, cold vs warm)"
cargo build -q --release -p wabench-svc
./target/release/wabench-served smoke --jobs 3

step "trace smoke (span capture -> Chrome trace export -> validator)"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run -q --release -p wabench-harness --bin wabench-run -- \
    crc32 --jobs 2 --trace-out "$trace_tmp/trace.json" > /dev/null
cargo run -q --release -p wabench-obs --bin wabench-trace-check -- \
    "$trace_tmp/trace.json"

step "verify OK"
