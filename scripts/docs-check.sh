#!/usr/bin/env bash
# Validates intra-repo markdown links: every relative `](target)` in
# README.md, EXPERIMENTS.md, and docs/*.md must resolve to a file or
# directory in the tree. External (http/https/mailto) links and pure
# #anchors are skipped; a `path#anchor` link is checked for the path
# part only. Exits nonzero listing every dangling link.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
checked=0

check_file() {
    local doc="$1"
    local dir
    dir="$(dirname "$doc")"
    # Inline links: `](target)` — good enough for the hand-written docs
    # here (no nested parens in targets).
    local links
    links="$(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' || true)"
    local target
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
            '#'*) continue ;;
        esac
        local path="${target%%#*}"
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "docs-check: $doc: dangling link -> $target" >&2
            fail=1
        fi
    done <<< "$links"
}

for doc in README.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    check_file "$doc"
done

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED" >&2
    exit 1
fi
echo "docs-check: $checked intra-repo links OK"
